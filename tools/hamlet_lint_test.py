#!/usr/bin/env python3
"""Self-test for hamlet_lint.py: builds throwaway repo fixtures with one
seeded violation per rule and asserts the linter (a) fires on each,
(b) stays quiet on the clean fixture, and (c) honors waiver comments and
the determinism allowlist. Run via ctest (label: lint) or directly."""

import os
import shutil
import subprocess
import sys
import tempfile

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "hamlet_lint.py")

README_WITH = """# fixture
| variable | default | meaning |
|---|---|---|
| `HAMLET_FIXTURE_VAR` | unset | documented and read |
"""

README_EXTRA_ROW = README_WITH + \
    "| `HAMLET_GHOST_VAR` | unset | documented but never read |\n"

GETENV_CC = 'const char* v = std::getenv("HAMLET_FIXTURE_VAR");\n'


class Fixture:
    """One throwaway repo root under a shared temp dir."""

    def __init__(self, base, name):
        self.root = os.path.join(base, name)
        os.makedirs(os.path.join(self.root, "src", "hamlet"))
        os.makedirs(os.path.join(self.root, "tests"))

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)
        return self

    def lint(self):
        proc = subprocess.run(
            [sys.executable, LINT, "--root", self.root],
            capture_output=True, text=True)
        return proc.returncode, proc.stdout + proc.stderr


FAILURES = []


def check(label, cond, detail=""):
    tag = "ok" if cond else "FAIL"
    print("%-52s %s" % (label, tag))
    if not cond:
        FAILURES.append(label + ("\n" + detail if detail else ""))


def main():
    base = tempfile.mkdtemp(prefix="hamlet_lint_test.")
    try:
        # Clean fixture: documented env var + its read site, a registered
        # test, orderly code. Expect exit 0.
        clean = (Fixture(base, "clean")
                 .write("README.md", README_WITH)
                 .write("src/hamlet/a.cc", GETENV_CC)
                 .write("tests/a_test.cc", "int main() {}\n")
                 .write("tests/CMakeLists.txt", "add_executable(t a_test.cc)"))
        code, out = clean.lint()
        check("clean fixture passes", code == 0, out)

        # env-docs, drift in both directions.
        undoc = (Fixture(base, "undoc")
                 .write("README.md", "# no table\n")
                 .write("src/hamlet/a.cc", GETENV_CC))
        code, out = undoc.lint()
        check("undocumented getenv fires",
              code == 1 and "HAMLET_FIXTURE_VAR" in out and "env-docs" in out,
              out)

        ghost = (Fixture(base, "ghost")
                 .write("README.md", README_EXTRA_ROW)
                 .write("src/hamlet/a.cc", GETENV_CC))
        code, out = ghost.lint()
        check("stale README row fires",
              code == 1 and "HAMLET_GHOST_VAR" in out, out)

        # Indirect FromEnv-style reads count as sites (no false drift).
        indirect = (Fixture(base, "indirect")
                    .write("README.md", README_WITH)
                    .write("src/hamlet/a.cc",
                           'bool b = BoolFromEnv("HAMLET_FIXTURE_VAR", 1);\n'))
        code, out = indirect.lint()
        check("FromEnv site counts as documented read", code == 0, out)

        # determinism: each banned construct, plus comment/string/waiver/
        # allowlist suppression.
        for snippet, what in [
            ("std::thread t([]{});\n", "std::thread"),
            ("int r = rand();\n", "rand"),
            ("std::random_device rd;\n", "random_device"),
            ("auto t = std::chrono::system_clock::now();\n", "system_clock"),
            ("long s = time(nullptr);\n", "time()"),
        ]:
            fix = Fixture(base, "det_" + what.strip("std:()"))
            fix.write("src/hamlet/a.cc", snippet)
            code, out = fix.lint()
            check("determinism fires on %s" % what,
                  code == 1 and "determinism" in out, out)

        quiet = (Fixture(base, "det_quiet")
                 .write("src/hamlet/a.cc",
                        "// std::thread in a comment is fine\n"
                        "/* rand() in a block comment too */\n"
                        'const char* s = "std::random_device";\n'))
        code, out = quiet.lint()
        check("comments and strings do not fire", code == 0, out)

        waived = (Fixture(base, "det_waived")
                  .write("src/hamlet/a.cc",
                         "std::thread t([]{});"
                         "  // hamlet-lint: allow(determinism)\n"))
        code, out = waived.lint()
        check("determinism waiver suppresses", code == 0, out)

        allowed = (Fixture(base, "det_allowlist")
                   .write("src/hamlet/common/parallel.cc",
                          "std::thread t([]{});\n"))
        code, out = allowed.lint()
        check("allowlisted file may use std::thread", code == 0, out)

        # unordered-iter: direct range-for over a declared unordered
        # container fires; a sorted copy does not; waiver suppresses.
        uiter = (Fixture(base, "uiter")
                 .write("src/hamlet/a.cc",
                        "std::unordered_map<int, int> counts;\n"
                        "for (const auto& kv : counts) Emit(kv);\n"))
        code, out = uiter.lint()
        check("unordered iteration fires",
              code == 1 and "unordered-iter" in out, out)

        uiter_ok = (Fixture(base, "uiter_ok")
                    .write("src/hamlet/a.cc",
                           "std::unordered_map<int, int> counts;\n"
                           "std::vector<int> keys = SortedKeys(counts);\n"
                           "for (int k : keys) Emit(k);\n"))
        code, out = uiter_ok.lint()
        check("iterating a sorted copy passes", code == 0, out)

        uiter_waived = (Fixture(base, "uiter_waived")
                        .write("src/hamlet/a.cc",
                               "std::unordered_set<int> seen;\n"
                               "for (int k : seen) Count(k);"
                               "  // hamlet-lint: allow(unordered-iter)\n"))
        code, out = uiter_waived.lint()
        check("unordered-iter waiver suppresses", code == 0, out)

        # test-reg: an unregistered tests/*_test.cc fires.
        unreg = (Fixture(base, "unreg")
                 .write("tests/orphan_test.cc", "int main() {}\n")
                 .write("tests/CMakeLists.txt", "# nothing registered\n"))
        code, out = unreg.lint()
        check("unregistered test suite fires",
              code == 1 and "test-reg" in out and "orphan_test.cc" in out,
              out)

        # Bogus root is a usage error, not a silent pass.
        proc = subprocess.run(
            [sys.executable, LINT, "--root",
             os.path.join(base, "does_not_exist")],
            capture_output=True, text=True)
        check("nonexistent root is exit 2", proc.returncode == 2,
              proc.stdout + proc.stderr)
    finally:
        shutil.rmtree(base, ignore_errors=True)

    if FAILURES:
        print("\n%d self-test failure(s):" % len(FAILURES), file=sys.stderr)
        for f in FAILURES:
            print("  - " + f, file=sys.stderr)
        return 1
    print("\nhamlet_lint self-test: all checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
