#!/usr/bin/env python3
"""Markdown hygiene check: relative links and heading anchors.

Usage:

    tools/check_markdown_links.py README.md ROADMAP.md docs

Arguments are markdown files or directories (scanned recursively for
*.md). For every inline link or image `[text](target)`:

- `http(s)://`, `mailto:` and other scheme-qualified targets are
  ignored (this is a repo-hygiene check, not a web crawler);
- a relative path must resolve to an existing file or directory,
  relative to the markdown file that contains the link;
- a `#fragment` — on its own or after a relative `.md` path — must
  match a heading anchor in the target file, using GitHub's slug rules
  (lowercase, punctuation stripped, spaces to hyphens, `-N` suffixes
  for duplicates).

Fenced code blocks and inline code spans are excluded from scanning, so
`[i][j]`-style snippets cannot produce false positives. Exits nonzero
listing every broken link; CI runs this over README.md, ROADMAP.md and
docs/ (the `docs` job).
"""

import argparse
import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
SCHEME_RE = re.compile(r"^[a-zA-Z][a-zA-Z0-9+.-]*:")
FENCE_RE = re.compile(r"^(```|~~~)")


def strip_code(text: str) -> str:
    """Blanks fenced code blocks and inline code spans (keeps line count)."""
    out_lines = []
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            out_lines.append("")
            continue
        out_lines.append("" if in_fence else re.sub(r"`[^`]*`", "", line))
    return "\n".join(out_lines)


def github_slug(heading: str, seen: dict) -> str:
    """GitHub's anchor slug for a heading text, tracking duplicates."""
    # Inline code and emphasis markers contribute their inner text only
    # (underscores stay: GitHub keeps them in slugs).
    text = re.sub(r"[`*]", "", heading)
    # Drop markdown links in headings, keeping the link text.
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)  # punctuation out (keeps _ and -)
    slug = text.replace(" ", "-")
    count = seen.get(slug, 0)
    seen[slug] = count + 1
    return slug if count == 0 else f"{slug}-{count}"


def anchors_of(path: str, cache: dict) -> set:
    if path in cache:
        return cache[path]
    anchors = set()
    seen: dict = {}
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError:
        cache[path] = anchors
        return anchors
    in_fence = False
    for line in text.splitlines():
        if FENCE_RE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        match = HEADING_RE.match(line)
        if match:
            anchors.add(github_slug(match.group(2), seen))
    cache[path] = anchors
    return anchors


def check_file(md_path: str, anchor_cache: dict) -> list:
    errors = []
    with open(md_path, encoding="utf-8") as f:
        text = strip_code(f.read())
    base_dir = os.path.dirname(os.path.abspath(md_path))
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if SCHEME_RE.match(target):
                continue  # external URL — out of scope
            path_part, _, fragment = target.partition("#")
            if path_part:
                resolved = os.path.normpath(os.path.join(base_dir,
                                                         path_part))
                if not os.path.exists(resolved):
                    errors.append(f"{md_path}:{lineno}: broken relative "
                                  f"link {target!r} (no such file "
                                  f"{resolved})")
                    continue
                anchor_file = resolved
            else:
                anchor_file = os.path.abspath(md_path)
            if fragment:
                if not anchor_file.endswith(".md"):
                    continue  # anchors into non-markdown: not checkable
                anchors = anchors_of(anchor_file, anchor_cache)
                if fragment not in anchors:
                    errors.append(f"{md_path}:{lineno}: broken anchor "
                                  f"{target!r} (no heading "
                                  f"#{fragment} in {anchor_file})")
    return errors


def collect_markdown(paths) -> list:
    files = []
    for path in paths:
        if os.path.isdir(path):
            for root, _, names in os.walk(path):
                files.extend(os.path.join(root, n) for n in sorted(names)
                             if n.endswith(".md"))
        else:
            files.append(path)
    return files


def main() -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("paths", nargs="+",
                    help="markdown files or directories to check")
    args = ap.parse_args()

    files = collect_markdown(args.paths)
    if not files:
        print("check_markdown_links: no markdown files found",
              file=sys.stderr)
        return 1
    anchor_cache: dict = {}
    errors = []
    for md in files:
        errors.extend(check_file(md, anchor_cache))
    for err in errors:
        print(err, file=sys.stderr)
    print(f"check_markdown_links: {len(files)} files, "
          f"{len(errors)} broken links")
    return 1 if errors else 0


if __name__ == "__main__":
    sys.exit(main())
